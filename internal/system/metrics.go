package system

import (
	"strconv"

	"atcsim/internal/cache"
	"atcsim/internal/cpu"
	"atcsim/internal/mem"
	"atcsim/internal/metrics"
)

// MetricsSink maps completed simulation Results onto a metrics registry.
//
// The simulator's components keep their own plain uint64 Stats structs on
// the hot path; the sink never touches per-access code. Instead the
// experiment runner calls Record once per *completed* run, folding the
// run's totals into shared counters with a handful of atomic adds. All
// families register eagerly at construction, so a /metrics scrape sees the
// full series set (at zero) before the first run completes.
type MetricsSink struct {
	runs metrics.Counter

	// Cache hierarchy, indexed [level][class] with levels l1d/l2/llc.
	cacheAccess    [3][mem.NumClasses]metrics.Counter
	cacheMiss      [3][mem.NumClasses]metrics.Counter
	cacheEvict     [3]metrics.Counter
	cacheDeadEvict [3]metrics.Counter
	writebacks     [3]metrics.Counter
	merges         [3]metrics.Counter
	bypasses       [3]metrics.Counter
	prefIssued     [3]metrics.Counter
	prefUseful     [3]metrics.Counter
	prefLate       [3]metrics.Counter
	prefDropped    [3]metrics.Counter

	// Queued-timing deque backpressure (zero under analytic timing).
	qRQFull    [3]metrics.Counter
	qRQMerged  [3]metrics.Counter
	qWQFull    [3]metrics.Counter
	qWQForward [3]metrics.Counter
	qPQFull    [3]metrics.Counter
	qPQMerged  [3]metrics.Counter
	qVAPQFull  [3]metrics.Counter
	qMSHRFull  [3]metrics.Counter

	// Translation: first-level TLBs + STLB, paging-structure caches, walker.
	tlbAccess   [3]metrics.Counter // dtlb, itlb, stlb
	tlbMiss     [3]metrics.Counter
	stlbEvict   metrics.Counter
	pscLookups  metrics.Counter
	pscHits     [mem.PTLevels + 1]metrics.Counter // index by level 2..5
	walks       metrics.Counter
	pteReads    [mem.PTLevels + 1]metrics.Counter // index by level 1..5
	leafService [mem.NumLevels]metrics.Counter

	// DRAM channel.
	dramReads, dramWrites metrics.Counter
	rowHits, rowClosed    metrics.Counter
	rowMisses             metrics.Counter
	tempoIssued           metrics.Counter
	busyCycles            metrics.Counter

	// Cores.
	instructions, cycles metrics.Counter
	stalls               [cpu.NumStallClasses]metrics.Counter
	branches, mispreds   metrics.Counter

	// Translation mechanisms (internal/xlat).
	xlatRequests  metrics.Counter
	xlatWalks     metrics.Counter
	xlatCacheHits metrics.Counter
	xlatInserts   metrics.Counter
	xlatSpecs     metrics.Counter
	xlatMisspecs  metrics.Counter

	// Barrier-parallel engine (Result.Parallel; zero under the serial
	// scheduler).
	parRuns    metrics.Counter
	parRounds  metrics.Counter
	parWaves   metrics.Counter
	parShared  metrics.Counter
	parSkew    metrics.Counter
	parRefills metrics.Counter
}

// cacheLevelNames label the three cache levels the sink aggregates over
// (instances of the same level are summed).
var cacheLevelNames = [3]string{"l1d", "l2", "llc"}

// tlbKindNames label the MMU's TLB structures.
var tlbKindNames = [3]string{"dtlb", "itlb", "stlb"}

// NewMetricsSink registers every simulation family on reg and returns the
// sink. Registration is idempotent per registry (the registry hands back
// existing series), so a second sink on the same registry shares counters.
func NewMetricsSink(reg *metrics.Registry) *MetricsSink {
	m := &MetricsSink{
		runs: reg.Counter("sim_results_recorded_total",
			"Completed simulations folded into these counters."),
		stlbEvict: reg.Counter("tlb_evictions_total",
			"STLB entries evicted.", metrics.L("kind", "stlb")),
		pscLookups: reg.Counter("psc_lookups_total",
			"Paging-structure-cache lookups (all levels probed in parallel)."),
		walks: reg.Counter("ptw_walks_total", "Page-table walks started."),
		dramReads: reg.Counter("dram_reads_total",
			"DRAM read requests serviced."),
		dramWrites: reg.Counter("dram_writes_total",
			"DRAM write requests serviced."),
		rowHits: reg.Counter("dram_row_hits_total",
			"DRAM reads hitting an open row buffer."),
		rowClosed: reg.Counter("dram_row_closed_total",
			"DRAM reads to a closed (precharged) bank."),
		rowMisses: reg.Counter("dram_row_misses_total",
			"DRAM reads conflicting with a different open row."),
		tempoIssued: reg.Counter("dram_tempo_prefetches_total",
			"TEMPO translation-triggered prefetches issued."),
		busyCycles: reg.Counter("dram_busy_cycles_total",
			"DRAM data-bus cycles booked."),
		instructions: reg.Counter("cpu_instructions_total",
			"Measured instructions retired across cores."),
		cycles: reg.Counter("cpu_cycles_total",
			"Measured core cycles summed across cores."),
		branches: reg.Counter("cpu_branches_total", "Branches executed."),
		mispreds: reg.Counter("cpu_mispredicts_total",
			"Branches mispredicted."),
		xlatRequests: reg.Counter("xlat_requests_total",
			"STLB-missing translations handled by the configured mechanism."),
		xlatWalks: reg.Counter("xlat_walks_total",
			"Hardware page walks the mechanism issued (fallback or verification)."),
		xlatCacheHits: reg.Counter("xlat_cache_hits_total",
			"Translations serviced by cache-resident TLB blocks (victima)."),
		xlatInserts: reg.Counter("xlat_tlb_block_inserts_total",
			"STLB-evicted entries parked into L2C/LLC (victima)."),
		xlatSpecs: reg.Counter("xlat_speculations_total",
			"Speculative translation fetches issued (revelator)."),
		xlatMisspecs: reg.Counter("xlat_misspeculations_total",
			"Speculations squashed by the verification walk (revelator)."),
		parRuns: reg.Counter("sim_parallel_runs_total",
			"Simulations executed by the deterministic barrier-parallel engine."),
		parRounds: reg.Counter("sim_parallel_rounds_total",
			"Cycle-window barrier rounds executed by the parallel engine."),
		parWaves: reg.Counter("sim_parallel_waves_total",
			"Shared-request resolution waves executed at parallel-engine barriers."),
		parShared: reg.Counter("sim_parallel_shared_requests_total",
			"Requests parked at the parallel-engine coordinator and serviced in canonical core order."),
		parSkew: reg.Counter("sim_parallel_skew_cycles_total",
			"Per-round spread between the most- and least-advanced core clocks, summed over rounds."),
		parRefills: reg.Counter("sim_parallel_trace_refills_total",
			"Per-core trace ring-buffer refills (batched trace streaming)."),
	}
	for li, level := range cacheLevelNames {
		lv := metrics.L("level", level)
		for c := mem.Class(0); c < mem.NumClasses; c++ {
			cl := metrics.L("class", c.String())
			m.cacheAccess[li][c] = reg.Counter("cache_accesses_total",
				"Cache lookups by level and access class.", lv, cl)
			m.cacheMiss[li][c] = reg.Counter("cache_misses_total",
				"Cache misses by level and access class.", lv, cl)
		}
		m.cacheEvict[li] = reg.Counter("cache_evictions_total",
			"Blocks evicted.", lv)
		m.cacheDeadEvict[li] = reg.Counter("cache_dead_evictions_total",
			"Blocks evicted without reuse after fill.", lv)
		m.writebacks[li] = reg.Counter("cache_writebacks_total",
			"Dirty blocks written back.", lv)
		m.merges[li] = reg.Counter("cache_mshr_merges_total",
			"Accesses merged with an in-flight miss.", lv)
		m.bypasses[li] = reg.Counter("cache_bypasses_total",
			"Fills skipped by a dead-block-bypassing policy.", lv)
		m.prefIssued[li] = reg.Counter("prefetch_issued_total",
			"Prefetches that allocated a fill.", lv)
		m.prefUseful[li] = reg.Counter("prefetch_useful_total",
			"Demand hits on prefetched blocks.", lv)
		m.prefLate[li] = reg.Counter("prefetch_late_total",
			"Demand accesses merged with an in-flight prefetch.", lv)
		m.prefDropped[li] = reg.Counter("prefetch_dropped_total",
			"Prefetches dropped on saturated MSHRs.", lv)
		m.qRQFull[li] = reg.Counter("cache_queue_rq_full_total",
			"Cycles a demand read stalled on a full read queue (queued timing).", lv)
		m.qRQMerged[li] = reg.Counter("cache_queue_rq_merged_total",
			"Demand reads that matched an in-flight read-queue entry (queued timing).", lv)
		m.qWQFull[li] = reg.Counter("cache_queue_wq_full_total",
			"Cycles a writeback stalled on a full write queue (queued timing).", lv)
		m.qWQForward[li] = reg.Counter("cache_queue_wq_forward_total",
			"Demand reads serviced by forwarding from a queued writeback (queued timing).", lv)
		m.qPQFull[li] = reg.Counter("cache_queue_pq_full_total",
			"Prefetches dropped on a full prefetch queue (queued timing).", lv)
		m.qPQMerged[li] = reg.Counter("cache_queue_pq_merged_total",
			"Prefetches merged with an already-queued prefetch (queued timing).", lv)
		m.qVAPQFull[li] = reg.Counter("cache_queue_vapq_full_total",
			"Distant prefetches dropped on a full virtual-address prefetch queue (queued timing).", lv)
		m.qMSHRFull[li] = reg.Counter("cache_queue_mshr_full_total",
			"Cycles the read-queue head stalled on saturated MSHRs (queued timing).", lv)
	}
	for ki, kind := range tlbKindNames {
		kv := metrics.L("kind", kind)
		m.tlbAccess[ki] = reg.Counter("tlb_accesses_total",
			"TLB lookups by structure.", kv)
		m.tlbMiss[ki] = reg.Counter("tlb_misses_total",
			"TLB misses by structure.", kv)
	}
	for lvl := 2; lvl <= mem.PTLevels; lvl++ {
		m.pscHits[lvl] = reg.Counter("psc_hits_total",
			"Paging-structure-cache hits by page-table level.",
			metrics.L("level", strconv.Itoa(lvl)))
	}
	for lvl := 1; lvl <= mem.PTLevels; lvl++ {
		m.pteReads[lvl] = reg.Counter("ptw_pte_reads_total",
			"PTE reads issued by the walker, by page-table level.",
			metrics.L("level", strconv.Itoa(lvl)))
	}
	for l := mem.Level(0); l < mem.NumLevels; l++ {
		m.leafService[l] = reg.Counter("ptw_leaf_service_total",
			"Leaf PTE reads by the hierarchy level that serviced them.",
			metrics.L("src", levelLabel(l)))
	}
	for c := cpu.StallClass(0); c < cpu.NumStallClasses; c++ {
		m.stalls[c] = reg.Counter("cpu_stall_cycles_total",
			"ROB-head stall cycles by class.", metrics.L("class", c.String()))
	}
	return m
}

// levelLabel lowercases mem.Level names for label values ("l1d".."dram").
func levelLabel(l mem.Level) string {
	switch l {
	case mem.LvlL1D:
		return "l1d"
	case mem.LvlL2:
		return "l2c"
	case mem.LvlLLC:
		return "llc"
	case mem.LvlDRAM:
		return "dram"
	}
	return "unknown"
}

// Record folds one completed run's totals into the registry. Nil-safe on
// both receiver and result; safe for concurrent use (every counter is one
// atomic word).
func (m *MetricsSink) Record(res *Result) {
	if m == nil || res == nil {
		return
	}
	m.runs.Inc()
	for _, st := range res.L1D {
		m.foldCache(0, st)
	}
	for _, st := range res.L2 {
		m.foldCache(1, st)
	}
	m.foldCache(2, res.LLC)
	for _, ql := range res.Queues {
		m.foldQueue(ql)
	}

	for i := range res.Cores {
		c := &res.Cores[i]
		m.tlbAccess[0].Add(c.MMU.DTLBAccesses)
		m.tlbMiss[0].Add(c.MMU.DTLBMisses)
		m.tlbAccess[1].Add(c.MMU.ITLBAccesses)
		m.tlbMiss[1].Add(c.MMU.ITLBMisses)
		m.tlbAccess[2].Add(c.MMU.STLBAccesses)
		m.tlbMiss[2].Add(c.MMU.STLBMisses)
		m.stlbEvict.Add(c.STLB.Evictions)
		m.pscLookups.Add(c.PSC.Lookups)
		for lvl := 2; lvl <= mem.PTLevels; lvl++ {
			m.pscHits[lvl].Add(c.PSC.Hits[lvl])
		}
		m.walks.Add(c.Walker.Walks)
		for lvl := 1; lvl <= mem.PTLevels; lvl++ {
			m.pteReads[lvl].Add(c.Walker.StepsPerLevel[lvl])
		}
		for l := mem.Level(0); l < mem.NumLevels; l++ {
			m.leafService[l].Add(c.Walker.LeafService.Count[l])
		}
		m.instructions.Add(c.Instructions)
		if c.Cycles > 0 {
			m.cycles.Add(uint64(c.Cycles))
		}
		for sc := cpu.StallClass(0); sc < cpu.NumStallClasses; sc++ {
			m.stalls[sc].Add(c.CPU.StallCycles[sc])
		}
		m.branches.Add(c.CPU.Branches)
		m.mispreds.Add(c.CPU.Mispredicts)
		m.xlatRequests.Add(c.Xlat.Requests)
		m.xlatWalks.Add(c.Xlat.Walks)
		m.xlatCacheHits.Add(c.Xlat.CacheHitsL2 + c.Xlat.CacheHitsLLC)
		m.xlatInserts.Add(c.Xlat.TLBBlockInserts)
		m.xlatSpecs.Add(c.Xlat.Speculations)
		m.xlatMisspecs.Add(c.Xlat.SpecWrong)
	}

	if p := res.Parallel; p != nil {
		m.parRuns.Inc()
		m.parRounds.Add(p.Rounds)
		m.parWaves.Add(p.Waves)
		m.parShared.Add(p.SharedRequests)
		m.parSkew.Add(p.SkewCycles)
		m.parRefills.Add(p.TraceRefills)
	}

	d := &res.DRAM
	m.dramReads.Add(d.Reads)
	m.dramWrites.Add(d.Writes)
	m.rowHits.Add(d.RowHits)
	m.rowClosed.Add(d.RowClosed)
	m.rowMisses.Add(d.RowMisses)
	m.tempoIssued.Add(d.TEMPOIssued)
	m.busyCycles.Add(d.BusyCycles)
}

// foldCache adds one cache instance's stats into level li's counters.
func (m *MetricsSink) foldCache(li int, st cache.Stats) {
	for c := mem.Class(0); c < mem.NumClasses; c++ {
		m.cacheAccess[li][c].Add(st.Access[c])
		m.cacheMiss[li][c].Add(st.Miss[c])
		m.cacheEvict[li].Add(st.Evictions[c])
		m.cacheDeadEvict[li].Add(st.DeadEvictions[c])
	}
	m.writebacks[li].Add(st.Writebacks)
	m.merges[li].Add(st.Merges)
	m.bypasses[li].Add(st.Bypasses)
	m.prefIssued[li].Add(st.PrefIssued)
	m.prefUseful[li].Add(st.PrefUseful)
	m.prefLate[li].Add(st.PrefLate)
	m.prefDropped[li].Add(st.PrefDropped)
}

// foldQueue adds one queued-timing level's deque counters. The L1I wrapper
// shares mem.LvlL1D and so folds into the l1d series alongside the L1D one.
func (m *MetricsSink) foldQueue(ql QueueLevel) {
	var li int
	switch ql.Level {
	case mem.LvlL1D:
		li = 0
	case mem.LvlL2:
		li = 1
	case mem.LvlLLC:
		li = 2
	default:
		return
	}
	m.qRQFull[li].Add(ql.Q.RQFull)
	m.qRQMerged[li].Add(ql.Q.RQMerged)
	m.qWQFull[li].Add(ql.Q.WQFull)
	m.qWQForward[li].Add(ql.Q.WQForward)
	m.qPQFull[li].Add(ql.Q.PQFull)
	m.qPQMerged[li].Add(ql.Q.PQMerged)
	m.qVAPQFull[li].Add(ql.Q.VAPQFull)
	m.qMSHRFull[li].Add(ql.Q.MSHRFull)
}
