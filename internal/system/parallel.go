package system

import (
	"runtime"

	"atcsim/internal/cache"
	"atcsim/internal/mem"
	"atcsim/internal/trace"
	"atcsim/internal/vm"
	"atcsim/internal/xlat"
)

// parallelWindow is the cycle quantum of one barrier round: every core runs
// until its next dispatch would cross the window end, parking at the
// coordinator whenever it needs the shared LLC/DRAM path. The window bounds
// how far core clocks can drift apart between barriers. The constant is part
// of the timing model for eligible multi-core machines — results are
// byte-identical across SimJobs values for any window, but changing the
// window changes which accesses share a wave — so it is a compile-time
// constant, not a runtime knob.
const parallelWindow = 2048

// parallelEligible reports whether build may wire the machine for the
// barrier-parallel engine. The engine requires every core's step path to
// stay core-local between portal crossings, so configurations that reach
// shared structures from inside a core step fall back to the serial
// interleaved scheduler:
//
//   - single-core machines have nothing to parallelize, and SMT threads
//     share the entire private hierarchy;
//   - the sampled request tracer is one sink fed from every level;
//   - mechanisms marked shared (victima probes and fills the LLC inside
//     Translate) — see xlat.CoreLocal;
//   - L1D prefetchers translate through mmu.Known, which walks the page
//     table backed by the shared frame allocator.
func parallelEligible(cfg Config, nCores int, shareCoreCaches bool) bool {
	if nCores < 2 || shareCoreCaches {
		return false
	}
	if cfg.Telemetry.TracerOrNil() != nil {
		return false
	}
	if !xlat.CoreLocal(cfg.Mechanism) {
		return false
	}
	if cfg.L1DPrefetcher != "" && cfg.L1DPrefetcher != "none" {
		return false
	}
	return true
}

// prefault maps every page a core's trace will touch — instruction and data
// — before the run starts. Cores share one frame allocator, so under the
// parallel engine demand-paged first-touch order would depend on worker
// scheduling; pre-faulting each core's footprint in canonical core order
// pins the frame assignment at build time instead. Interior page-table
// frames allocate here too, so an eligible run performs no allocator calls
// at all while cores are concurrent.
func prefault(pt *vm.PageTable, tr *trace.Trace) error {
	seen := make(map[mem.Addr]struct{}, 1024)
	touch := func(va mem.Addr) error {
		pn := mem.PageNumber(va)
		if _, ok := seen[pn]; ok {
			return nil
		}
		seen[pn] = struct{}{}
		_, err := pt.Translate(va)
		return err
	}
	for i := range tr.Insts {
		in := &tr.Insts[i]
		if err := touch(in.IP); err != nil {
			return err
		}
		if in.Op == trace.OpLoad || in.Op == trace.OpStore {
			if err := touch(in.Addr); err != nil {
				return err
			}
		}
	}
	return nil
}

// parEngine runs one goroutine per core inside cycle-window rounds and
// resolves every shared-hierarchy request serially, in canonical core-index
// order, at coordinator waves. The schedule — round windows, wave
// membership, resolution order — is a pure function of config and traces:
// SimJobs only caps how many cores compute concurrently between barriers,
// so reports are byte-identical for every value.
//
// Protocol per round: each core steps until its next dispatch reaches the
// window end. A core that needs the shared path parks inside its portal and
// releases its compute slot. Once every core is parked or finished, the
// coordinator services the parked requests in core order (one wave) and
// resumes them; the round ends when all cores have finished the window.
// Wave k+1 only forms after every core resumed in wave k has parked again
// or finished, which is what makes membership independent of worker timing.
type parEngine struct {
	sim   *sim
	lower cache.Lower // real shared path: the LLC or its queued wrapper
	jobs  int

	// active gates the portals: outside rounds (build, queue drains, stat
	// collection) portal accesses pass straight through on the caller's
	// goroutine.
	active bool

	// slots is the SimJobs semaphore. A worker holds a token while stepping
	// its core and returns it while parked or finished, so at most jobs
	// cores compute concurrently and jobs < cores cannot deadlock.
	slots chan struct{}
	// parkCh carries worker→coordinator transitions: a core id parks on a
	// shared request, ^id reports the window finished.
	parkCh chan int

	portals []*sharedPortal
	parked  []bool
	nParked int

	target    int // phase instruction target per core
	lastTotal int // phaseCount sum at the previous barrier

	rounds, waves, sharedReqs, skew uint64
}

// newParEngine wires portals and the slot semaphore for n cores.
func newParEngine(s *sim, lower cache.Lower, n int) *parEngine {
	jobs := s.cfg.SimJobs
	if jobs == 0 {
		jobs = runtime.NumCPU()
	}
	if jobs < 1 {
		jobs = 1
	}
	if jobs > n {
		jobs = n
	}
	e := &parEngine{
		sim:    s,
		lower:  lower,
		jobs:   jobs,
		slots:  make(chan struct{}, jobs),
		parkCh: make(chan int, n),
		parked: make([]bool, n),
	}
	for i := 0; i < jobs; i++ {
		e.slots <- struct{}{}
	}
	for i := 0; i < n; i++ {
		e.portals = append(e.portals, &sharedPortal{eng: e, core: i, resume: make(chan struct{})})
	}
	return e
}

// portal returns the cache.Lower core's private L2 should sit on.
func (e *parEngine) portal(core int) cache.Lower { return e.portals[core] }

// sharedPortal is the cache.Lower each private L2 points at under the
// parallel engine. During a round it parks the request with the
// coordinator; outside rounds it is a transparent pass-through.
type sharedPortal struct {
	eng  *parEngine
	core int

	// Parked-request mailbox: req/cycle are written by the core's worker
	// before it announces the park, res by the coordinator before it
	// signals resume; the parkCh/resume channel pair orders the handoff.
	req    *mem.Request
	cycle  int64
	res    cache.Result
	resume chan struct{}
}

// Access implements cache.Lower. Inside a round it parks the request and
// blocks until the coordinator has serviced it in a wave; the compute slot
// is released while blocked so another core can run (jobs < cores stays
// deadlock-free) and reacquired before the window resumes.
func (p *sharedPortal) Access(req *mem.Request, cycle int64) cache.Result {
	e := p.eng
	if !e.active {
		return e.lower.Access(req, cycle)
	}
	p.req, p.cycle = req, cycle
	e.slots <- struct{}{}
	e.parkCh <- p.core
	<-p.resume
	<-e.slots
	return p.res
}

// phase is the barrier-parallel counterpart of sim.phase: run every core
// for target instructions. Cores that reach the target keep running —
// preserving contention, like the serial scheduler — until all are done;
// completion cycles are recorded at the target boundary. Done-ness is only
// observed at round barriers, so the final round always runs to its window
// end and the round/wave schedule stays independent of SimJobs.
func (e *parEngine) phase(target int) {
	s := e.sim
	for _, c := range s.cores {
		c.phaseCount = 0
		c.done = false
	}
	e.target = target
	e.lastTotal = 0
	e.active = true
	for {
		done := true
		for _, c := range s.cores {
			if !c.done {
				done = false
				break
			}
		}
		if done {
			break
		}
		e.runRound()
	}
	e.active = false
}

// runRound executes one cycle window: spawn a worker per core, collect
// parks and finishes, resolve waves whenever every non-finished core is
// parked, and batch the serial scheduler's per-step bookkeeping at the
// barrier. Every core ends the round with NextDispatch at or past the
// window end, so the global minimum strictly advances and phases terminate.
func (e *parEngine) runRound() {
	s := e.sim
	window := int64(-1)
	for _, c := range s.cores {
		if d := c.core.NextDispatch(); window < 0 || d < window {
			window = d
		}
	}
	window += parallelWindow

	running := len(s.cores)
	for _, c := range s.cores {
		go e.runWindow(c, window)
	}
	finished := 0
	for finished < len(s.cores) {
		id := <-e.parkCh
		running--
		if id < 0 {
			finished++
		} else {
			e.parked[id] = true
			e.nParked++
		}
		if running == 0 && e.nParked > 0 {
			running += e.resolveWave()
		}
	}
	e.rounds++

	lo, hi := int64(-1), int64(-1)
	total := 0
	for _, c := range s.cores {
		d := c.core.NextDispatch()
		if lo < 0 || d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
		total += c.phaseCount
	}
	e.skew += uint64(hi - lo)
	delta := total - e.lastTotal
	e.lastTotal = total
	s.barrierTick(delta)
}

// runWindow steps one core until its next dispatch reaches the window end,
// then reports the finish. Only per-core state is touched here; every
// shared-hierarchy access parks inside the core's portal.
func (e *parEngine) runWindow(c *coreCtx, window int64) {
	<-e.slots
	s := e.sim
	for c.core.NextDispatch() < window {
		s.step(c)
		c.phaseCount++
		if !c.done && c.phaseCount >= e.target {
			c.done = true
			c.doneCycle = c.core.Cycle()
		}
	}
	e.slots <- struct{}{}
	e.parkCh <- ^c.id
}

// resolveWave services every parked request against the real shared path in
// ascending core order — the canonical order that makes results independent
// of worker scheduling — and resumes the owners. A resumed core may park
// again during the wave; its park buffers in parkCh and joins the next
// wave. Returns how many workers re-entered the running state.
func (e *parEngine) resolveWave() int {
	e.waves++
	resumed := 0
	for id, p := range e.portals {
		if !e.parked[id] {
			continue
		}
		e.parked[id] = false
		p.res = e.lower.Access(p.req, p.cycle)
		e.sharedReqs++
		resumed++
		p.resume <- struct{}{}
	}
	e.nParked = 0
	return resumed
}

// statsSnapshot exports the engine counters for Result.Parallel. Everything
// here is a pure function of config and traces, never of SimJobs or worker
// timing, so it is safe to serialize into byte-identical reports.
func (e *parEngine) statsSnapshot() ParallelStats {
	return ParallelStats{
		Rounds:         e.rounds,
		Waves:          e.waves,
		SharedRequests: e.sharedReqs,
		SkewCycles:     e.skew,
	}
}

// barrierTick batches the serial scheduler's per-instruction bookkeeping —
// invariant-audit cadence, heartbeat ticks, progress — at a round barrier
// using delta-step accounting, so the cadence follows instruction counts
// (deterministic) rather than wall-clock or worker timing.
func (s *sim) barrierTick(delta int) {
	if delta <= 0 {
		return
	}
	if s.checking {
		if s.checkCtr += delta; s.checkCtr >= checkStride {
			s.checkCtr = 0
			s.auditInvariants()
		}
	}
	if !s.measuring {
		return
	}
	s.stepped += uint64(delta)
	if s.hb != nil && s.stepped-s.ticked >= s.hbEvery {
		s.heartbeatTick()
	}
	if s.progress != nil {
		s.progress.Set(s.stepped)
	}
}
