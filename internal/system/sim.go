package system

import (
	"fmt"

	"atcsim/internal/cache"
	"atcsim/internal/cpu"
	"atcsim/internal/dram"
	"atcsim/internal/mem"
	"atcsim/internal/prefetch"
	"atcsim/internal/ptw"
	"atcsim/internal/stats"
	"atcsim/internal/telemetry"
	"atcsim/internal/tlb"
	"atcsim/internal/trace"
	"atcsim/internal/vm"
	"atcsim/internal/xlat"
)

// coreCtx is the per-hardware-thread state of a run.
type coreCtx struct {
	id int
	tr *trace.Trace
	// cur streams the trace through a fixed per-core ring buffer
	// (trace.CursorBlock instructions per refill): each core reads its own
	// resident window instead of sharing one big instruction slice, which
	// matters once cores step on separate goroutines.
	cur    *trace.Cursor
	core   *cpu.Core
	bp     *cpu.Perceptron
	mmu    *ptw.MMU
	l1i    *cache.Cache
	l1d    *cache.Cache
	l2     *cache.Cache
	stlb   *tlb.TLB
	lastIL mem.Addr

	// l1iPath and l1dPath are where the core issues fetches and data
	// accesses: the caches themselves under analytic timing, their queued
	// wrappers under queued timing.
	l1iPath cache.Lower
	l1dPath cache.Lower

	// req is the per-core scratch request reused across steps. Each cache
	// level keeps its own scratch for writebacks/prefetches, and the request
	// is fully consumed before step returns, so one per core suffices.
	req mem.Request

	replayService stats.ServiceDist
	lastLoadDone  int64

	phaseCount int
	done       bool
	baseCycle  int64
	doneCycle  int64
}

// sim is a fully wired machine.
type sim struct {
	cfg     Config
	cores   []*coreCtx
	l1ds    []*cache.Cache // distinct L1D instances (1 for SMT)
	l2s     []*cache.Cache
	llc     *cache.Cache
	channel *dram.Controller

	// queued holds the per-level deque wrappers in creation order (LLC
	// first, then each core group's L2/L1D/L1I); draining walks the slice
	// in reverse so upper levels flush into lower queues before those
	// drain. Empty under analytic timing.
	queued []*cache.Queued

	// Observability (all nil/false when telemetry is disabled; the phase
	// loop then pays one predictable branch per instruction).
	tracer    *telemetry.Tracer
	hb        *telemetry.Heartbeat
	hbEvery   uint64
	onTick    func(telemetry.Snapshot)
	progress  *telemetry.Progress
	measuring bool
	stepped   uint64 // measured instructions stepped (all cores)
	ticked    uint64 // stepped count at the last heartbeat tick

	// Invariant auditing (Config.CheckInvariants or the atcsim_invariants
	// build tag): every checkStride instructions the structural state of
	// all models is validated; violations panic.
	checking bool
	checkCtr int

	// par is the deterministic barrier-parallel engine, non-nil only for
	// eligible multi-core machines (see parallelEligible). When set, phases
	// run one goroutine per core with shared LLC/DRAM requests resolved in
	// canonical core order at cycle-window barriers.
	par *parEngine
}

// Run simulates a single-core machine over one trace.
func Run(cfg Config, tr *trace.Trace) (*Result, error) {
	s, err := build(cfg, []*trace.Trace{tr}, false)
	if err != nil {
		return nil, err
	}
	return s.run(), nil
}

// RunSMT simulates a 2-way SMT core: both hardware threads share the entire
// cache hierarchy and split the ROB, matching the paper's SMT setup.
func RunSMT(cfg Config, t0, t1 *trace.Trace) (*Result, error) {
	cfg.CPU.ROBSize = defaultedROB(cfg.CPU) / 2
	s, err := build(cfg, []*trace.Trace{t0, t1}, true)
	if err != nil {
		return nil, err
	}
	return s.run(), nil
}

// RunMulti simulates one core per trace with private L1/L2/TLBs and a
// shared LLC and DRAM channel. The LLC capacity scales with the core count
// (2MB/slice per Table I); the extra slices add ways so the set count stays
// a power of two.
func RunMulti(cfg Config, traces []*trace.Trace) (*Result, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("system: no traces")
	}
	cfg.LLC.SizeBytes *= len(traces)
	cfg.LLC.Ways *= len(traces)
	// Table I: one DDR5 channel per four cores.
	if cfg.DRAM.Channels < (len(traces)+3)/4 {
		cfg.DRAM.Channels = (len(traces) + 3) / 4
	}
	s, err := build(cfg, traces, false)
	if err != nil {
		return nil, err
	}
	return s.run(), nil
}

func defaultedROB(c cpu.Config) int {
	if c.ROBSize > 0 {
		return c.ROBSize
	}
	return cpu.DefaultConfig().ROBSize
}

// build wires the machine. shareCoreCaches makes all threads share one
// L1I/L1D/L2 (SMT); otherwise those are private and only LLC/DRAM are
// shared.
func build(cfg Config, traces []*trace.Trace, shareCoreCaches bool) (*sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i, tr := range traces {
		if tr == nil || len(tr.Insts) == 0 {
			return nil, fmt.Errorf("system: trace %d is empty", i)
		}
	}

	alloc, err := vm.NewFrameAllocator(cfg.PhysBits, !cfg.NoScatterFrames)
	if err != nil {
		return nil, err
	}
	channel := dram.NewController(cfg.DRAM)

	llcCfg := cfg.LLC
	llcCfg.TrackRecall = cfg.TrackRecall
	llc, err := cache.New(llcCfg, cache.DRAMAdapter{Read: channel.Read, Write: channel.Write})
	if err != nil {
		return nil, err
	}
	if cfg.TEMPO {
		channel.SetTEMPO(func(line mem.Addr, cycle int64) {
			llc.Prefetch(line, cycle, true)
		})
	}

	s := &sim{cfg: cfg, llc: llc, channel: channel}
	s.checking = cfg.CheckInvariants || invariantsDefault
	parallel := parallelEligible(cfg, len(traces), shareCoreCaches)

	// Under queued timing every level sits behind a cache.Queued wrapper;
	// lower-pointer chaining goes through the wrappers so evict writebacks
	// land in the next level's write queue.
	queued := cfg.queuedTiming()
	qconf := func(level mem.Level) cache.QueueConfig {
		if cfg.Queues != nil {
			return *cfg.Queues
		}
		return cache.DefaultQueueConfig(level)
	}
	llcPath := cache.Lower(llc)
	if queued {
		q := cache.NewQueued(llc, qconf(mem.LvlLLC))
		s.queued = append(s.queued, q)
		llcPath = q
	}

	// Eligible multi-core machines run under the barrier-parallel engine:
	// each core's private L2 then points at a per-core portal instead of
	// the shared LLC path, so shared accesses park at the coordinator and
	// resolve in canonical core order (see parallel.go).
	if parallel {
		s.par = newParEngine(s, llcPath, len(traces))
	}

	// coreCaches bundles one core group's caches with the access paths the
	// core (and walker) issue into.
	type coreCaches struct {
		l1i, l1d, l2     *cache.Cache
		l1iPath, l1dPath cache.Lower
	}
	var shared *coreCaches
	newCoreCaches := func(core int) (coreCaches, error) {
		var cc coreCaches
		l2Lower := llcPath
		if s.par != nil {
			l2Lower = s.par.portal(core)
		}
		l2Cfg := cfg.L2
		l2Cfg.TrackRecall = cfg.TrackRecall
		l2, err := cache.New(l2Cfg, l2Lower)
		if err != nil {
			return cc, err
		}
		if pf, err := prefetch.New(cfg.L2Prefetcher, prefetch.Options{Degree: cfg.PrefetchDegree}); err != nil {
			return cc, err
		} else if pf != nil {
			l2.AttachPrefetcher(pf)
		}
		l2Path := cache.Lower(l2)
		if queued {
			q := cache.NewQueued(l2, qconf(mem.LvlL2))
			s.queued = append(s.queued, q)
			l2Path = q
		}
		l1d, err := cache.New(cfg.L1D, l2Path)
		if err != nil {
			return cc, err
		}
		l1i, err := cache.New(cfg.L1I, l2Path)
		if err != nil {
			return cc, err
		}
		cc = coreCaches{l1i: l1i, l1d: l1d, l2: l2, l1iPath: l1i, l1dPath: l1d}
		if queued {
			qd := cache.NewQueued(l1d, qconf(mem.LvlL1D))
			qi := cache.NewQueued(l1i, qconf(mem.LvlL1D))
			s.queued = append(s.queued, qd, qi)
			cc.l1dPath, cc.l1iPath = qd, qi
		}
		return cc, nil
	}

	for i, tr := range traces {
		var cc coreCaches
		if shareCoreCaches {
			if shared == nil {
				cc, err = newCoreCaches(i)
				if err != nil {
					return nil, err
				}
				shared = &cc
				s.l1ds = append(s.l1ds, cc.l1d)
				s.l2s = append(s.l2s, cc.l2)
			}
			cc = *shared
		} else {
			cc, err = newCoreCaches(i)
			if err != nil {
				return nil, err
			}
			s.l1ds = append(s.l1ds, cc.l1d)
			s.l2s = append(s.l2s, cc.l2)
		}
		l1i, l1d, l2 := cc.l1i, cc.l1d, cc.l2

		pt, err := vm.NewPageTable(alloc)
		if err != nil {
			return nil, err
		}
		if cfg.HugePages {
			if err := pt.SetHugePages(true); err != nil {
				return nil, err
			}
		}
		if s.par != nil {
			// Pin the shared frame allocator's assignment order at build
			// time (canonical core order) so concurrent cores never
			// demand-allocate; see prefault.
			if err := prefault(pt, tr); err != nil {
				return nil, err
			}
		}
		psc := tlb.NewPSC(cfg.PSC)
		walker, err := ptw.NewWalker(pt, psc, cc.l1dPath, i)
		if err != nil {
			return nil, err
		}
		if cfg.PageWalkers > 0 {
			walker.SetConcurrentWalks(cfg.PageWalkers)
		}
		stlbCfg := cfg.STLB
		stlbCfg.TrackRecall = cfg.TrackRecall
		dtlb, err := tlb.New(cfg.DTLB)
		if err != nil {
			return nil, err
		}
		itlb, err := tlb.New(cfg.ITLB)
		if err != nil {
			return nil, err
		}
		stlb, err := tlb.New(stlbCfg)
		if err != nil {
			return nil, err
		}
		mmu, err := ptw.NewMMU(dtlb, itlb, stlb, walker)
		if err != nil {
			return nil, err
		}
		mech, err := xlat.New(cfg.Mechanism, xlat.Deps{
			L2: l2, LLC: llc, STLB: stlb,
			Oracle:            pt.Translate,
			CheckTranslations: s.checking,
		})
		if err != nil {
			return nil, err
		}
		mmu.SetMechanism(mech)

		// The L1D prefetcher (IPCP) needs virtual→physical translation with
		// TLB-probe semantics for cross-page candidates.
		if cfg.L1DPrefetcher != "" && cfg.L1DPrefetcher != "none" {
			translate := func(va mem.Addr) (mem.Addr, bool) {
				if pa, ok := mmu.Probe(va); ok {
					return pa, true
				}
				pa, err := mmu.Known(va)
				if err != nil {
					return 0, false
				}
				return pa, false
			}
			pf, err := prefetch.New(cfg.L1DPrefetcher, prefetch.Options{Translate: translate, Degree: cfg.PrefetchDegree})
			if err != nil {
				return nil, err
			}
			if pf != nil && (!shareCoreCaches || i == 0) {
				l1d.AttachPrefetcher(pf)
			}
		}

		core, err := cpu.New(cfg.CPU)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, &coreCtx{
			id:      i,
			tr:      tr,
			cur:     trace.NewCursor(tr),
			core:    core,
			bp:      cpu.NewPerceptron(),
			mmu:     mmu,
			l1i:     l1i,
			l1d:     l1d,
			l2:      l2,
			stlb:    stlb,
			lastIL:  ^mem.Addr(0),
			l1iPath: cc.l1iPath,
			l1dPath: cc.l1dPath,
		})
	}

	// Observability wiring: hooks are nil-safe, so only the enabled
	// facilities cost anything.
	s.tracer = cfg.Telemetry.TracerOrNil()
	s.hb = cfg.Telemetry.HeartbeatOrNil()
	s.hbEvery = uint64(s.hb.Every())
	s.onTick = cfg.Telemetry.OnTickOrNil()
	s.progress = cfg.Telemetry.ProgressOrNil()
	if s.tracer != nil {
		s.llc.SetTracer(s.tracer)
		s.channel.SetTracer(s.tracer)
		for _, c := range s.cores {
			c.core.SetTracer(s.tracer, c.id)
			c.mmu.SetTracer(s.tracer)
			c.l1i.SetTracer(s.tracer)
			c.l1d.SetTracer(s.tracer)
			c.l2.SetTracer(s.tracer)
		}
	}
	return s, nil
}

// step executes one instruction on core c.
func (s *sim) step(c *coreCtx) {
	in := c.cur.Next() // replays the trace cyclically

	d := c.core.NextDispatch()

	// Instruction fetch on line transitions; pipelined fetch hides the L1I
	// hit latency, so only the excess stalls the frontend.
	if il := mem.LineAddr(in.IP); il != c.lastIL {
		c.lastIL = il
		tr, err := c.mmu.TranslateInstr(in.IP, in.IP, d)
		if err == nil {
			c.req = mem.Request{Addr: tr.PA, VAddr: in.IP, IP: in.IP, Kind: mem.IFetch, Core: c.id}
			res := c.l1iPath.Access(&c.req, tr.Ready)
			if eff := res.Ready - s.cfg.L1I.Latency; eff > d {
				c.core.FrontendStall(eff)
				d = c.core.NextDispatch()
			}
		}
	}

	exec := c.core.Config().ExecLatency
	switch in.Op {
	case trace.OpALU:
		c.core.Dispatch(cpu.Entry{Complete: d + exec})

	case trace.OpBranch:
		c.core.CountBranch()
		if !c.bp.Update(uint64(in.IP), in.Taken) {
			c.core.Mispredict(d + exec)
		}
		c.core.Dispatch(cpu.Entry{Complete: d + exec})

	case trace.OpLoad:
		issueAt := d
		if in.Dep && c.lastLoadDone > issueAt {
			// Pointer chase: the address comes from the previous load.
			issueAt = c.lastLoadDone
		}
		s.tracer.BeginSample(c.id, "load", in.IP, in.Addr, issueAt)
		tr, err := c.mmu.Translate(in.Addr, in.IP, issueAt)
		if err != nil {
			s.tracer.EndSample("load", d+exec)
			c.core.Dispatch(cpu.Entry{Complete: d + exec})
			return
		}
		c.req = mem.Request{
			Addr: tr.PA, VAddr: in.Addr, IP: in.IP,
			Kind: mem.Load, IsReplay: tr.STLBMiss, Core: c.id,
		}
		issue := tr.Ready
		if tr.STLBMiss {
			// The replay re-issues through TLB fills and the scheduler —
			// the window ATP's prefetch overlaps.
			issue += s.cfg.ReplayIssueDelay
			if s.tracer.Active() {
				s.tracer.Span("request", "replay-issue", telemetry.LaneRequest, tr.Ready, issue)
			}
		}
		res := c.l1dPath.Access(&c.req, issue)
		if tr.STLBMiss {
			c.replayService.Record(res.Src)
		}
		s.tracer.EndSample("load", res.Ready)
		c.lastLoadDone = res.Ready
		c.core.Dispatch(cpu.Entry{
			Complete:  res.Ready,
			IsLoad:    true,
			STLBMiss:  tr.STLBMiss,
			TransDone: tr.Ready,
		})

	case trace.OpStore:
		s.tracer.BeginSample(c.id, "store", in.IP, in.Addr, d)
		tr, err := c.mmu.Translate(in.Addr, in.IP, d)
		if err != nil {
			s.tracer.EndSample("store", d+exec)
			c.core.Dispatch(cpu.Entry{Complete: d + exec})
			return
		}
		c.req = mem.Request{
			Addr: tr.PA, VAddr: in.Addr, IP: in.IP,
			Kind: mem.Store, IsReplay: tr.STLBMiss, Core: c.id,
		}
		c.l1dPath.Access(&c.req, tr.Ready)
		// Stores retire once translated (store-buffer commit); the write
		// drains in the background.
		complete := d + exec
		if tr.Ready > complete {
			complete = tr.Ready
		}
		s.tracer.EndSample("store", complete)
		c.core.Dispatch(cpu.Entry{Complete: complete})
	}
}

// phase runs every core for target instructions, interleaving cores on the
// shared virtual clock (least-advanced core first). Cores that reach the
// target keep running — preserving contention — until all are done; their
// completion cycle is recorded at the target boundary.
func (s *sim) phase(target int) {
	for _, c := range s.cores {
		c.phaseCount = 0
		c.done = false
	}
	remaining := len(s.cores)
	for remaining > 0 {
		// Pick the least-advanced core.
		var pick *coreCtx
		var best int64
		for _, c := range s.cores {
			if d := c.core.NextDispatch(); pick == nil || d < best {
				pick, best = c, d
			}
		}
		s.step(pick)
		pick.phaseCount++
		if s.checking {
			if s.checkCtr++; s.checkCtr >= checkStride {
				s.checkCtr = 0
				s.auditInvariants()
			}
		}
		if s.measuring {
			s.stepped++
			if s.hb != nil && s.stepped%s.hbEvery == 0 {
				s.heartbeatTick()
			}
			if s.progress != nil && s.stepped&8191 == 0 {
				s.progress.Set(s.stepped)
			}
		}
		if !pick.done && pick.phaseCount >= target {
			pick.done = true
			pick.doneCycle = pick.core.Cycle()
			remaining--
		}
	}
}

// drainQueued flushes every queued wrapper, upper levels first so their
// retiring entries (and evict writebacks) land in the lower queues before
// those drain. A no-op under analytic timing.
func (s *sim) drainQueued() {
	for i := len(s.queued) - 1; i >= 0; i-- {
		s.queued[i].Drain()
	}
}

func (s *sim) resetStats() {
	// In-flight queue entries carry pre-reset work; finish them so the
	// measured phase starts from empty deques.
	s.drainQueued()
	// The hierarchy has at most 3 distinct core caches per core; a small
	// slice beats a map allocation here (SMT cores share cache instances,
	// so dedup is still required).
	seen := make([]*cache.Cache, 0, 3*len(s.cores))
	for _, c := range s.cores {
		c.core.ResetStats()
		c.mmu.ResetStats()
		c.replayService.Reset()
		for _, ca := range []*cache.Cache{c.l1i, c.l1d, c.l2} {
			dup := false
			for _, p := range seen {
				if p == ca {
					dup = true
					break
				}
			}
			if !dup {
				ca.ResetStats()
				seen = append(seen, ca)
			}
		}
	}
	s.llc.ResetStats()
	s.channel.ResetStats()
	for _, q := range s.queued {
		q.ResetStats()
	}
}

// heartbeatTick feeds the current cumulative snapshot to the heartbeat
// engine and, when a Hub.OnTick bridge is installed, to the live metrics
// gauges. OnTick rides the heartbeat cadence, so live scraping costs
// nothing between ticks.
func (s *sim) heartbeatTick() {
	sn := s.snapshot()
	s.hb.Tick(sn)
	if s.onTick != nil {
		s.onTick(sn)
	}
	s.ticked = s.stepped
}

// snapshot collects the cumulative counters the heartbeat engine differences
// into interval rows. All fields count from the start of the measured phase.
func (s *sim) snapshot() telemetry.Snapshot {
	var sn telemetry.Snapshot
	for _, c := range s.cores {
		if cyc := c.core.Cycle() - c.baseCycle; cyc > sn.Cycle {
			sn.Cycle = cyc
		}
		cst := c.core.Stats()
		sn.Instructions += cst.Instructions
		for k := 0; k < telemetry.NumStallKinds; k++ {
			sn.Stalls[k] += cst.StallCycles[k]
		}
		mst := c.mmu.Stats()
		sn.STLBAccesses += mst.STLBAccesses
		sn.STLBMisses += mst.STLBMisses
		wst := c.mmu.W.Stats()
		sn.LeafReads += wst.LeafService.Total()
		sn.LeafDRAM += wst.LeafService.Count[mem.LvlDRAM]
	}
	for _, l1d := range s.l1ds {
		st := l1d.Stats()
		for cl := mem.Class(0); cl < mem.NumClasses; cl++ {
			sn.L1DMisses[cl] += st.Miss[cl]
		}
	}
	for _, l2 := range s.l2s {
		st := l2.Stats()
		for cl := mem.Class(0); cl < mem.NumClasses; cl++ {
			sn.L2Misses[cl] += st.Miss[cl]
		}
	}
	llc := s.llc.Stats()
	for cl := mem.Class(0); cl < mem.NumClasses; cl++ {
		sn.LLCMisses[cl] = llc.Miss[cl]
	}
	d := s.channel.Stats()
	sn.DRAMReads = d.Reads
	sn.DRAMRowHits = d.RowHits
	sn.DRAMRowClosed = d.RowClosed
	sn.DRAMRowMisses = d.RowMisses
	return sn
}

// runPhase dispatches one warmup/measurement phase to the active scheduler:
// the barrier-parallel engine when wired, the serial interleaved phase loop
// otherwise.
func (s *sim) runPhase(target int) {
	if s.par != nil {
		s.par.phase(target)
		return
	}
	s.phase(target)
}

// run executes warmup + measurement and collects results.
func (s *sim) run() *Result {
	if s.cfg.Warmup > 0 {
		s.runPhase(s.cfg.Warmup)
	}
	s.resetStats()
	for _, c := range s.cores {
		c.baseCycle = c.core.Cycle()
	}
	if s.progress != nil {
		s.progress.SetTotal(uint64(s.cfg.Instructions) * uint64(len(s.cores)))
	}
	if s.hb != nil {
		// Measurement-start baseline: the first interval rows difference
		// against freshly reset counters.
		s.hb.Begin(s.snapshot())
	}
	s.measuring = true
	s.runPhase(s.cfg.Instructions)
	s.measuring = false
	if s.hb != nil && s.stepped > s.ticked {
		// Flush the final partial interval so the rows' instruction counts
		// sum to the measured total.
		s.heartbeatTick()
	}
	if s.progress != nil {
		s.progress.Set(s.stepped)
	}
	// Flush in-flight queue entries so collected stats (fills, writebacks,
	// backpressure counters) cover every measured request.
	s.drainQueued()
	if s.checking {
		s.auditInvariants()
	}
	return s.collect()
}
