package system

// Timing model names for Config.Timing. The analytic engine is the original
// latency-composition hierarchy: Access recurses synchronously and returns a
// closed-form ready cycle. The queued engine interposes a cache.Queued
// wrapper per level — bounded RQ/WQ/PQ/VAPQ deques stepped cycle by cycle,
// MSHR occupancy gating, write-forwarding and prefetch merging — and
// surfaces the backpressure counters in Result.Queues, the report's
// per-level "queues" lines and the cache_queue_* metric families.
const (
	TimingAnalytic = "analytic"
	TimingQueued   = "queued"
)

// TimingModels lists the registered timing models.
func TimingModels() []string { return []string{TimingAnalytic, TimingQueued} }

// TimingRegistered reports whether name selects a timing model. The empty
// string resolves to the analytic engine and keeps configuration JSON — and
// therefore experiment run keys and golden reports — byte-identical to
// builds that predate the switch.
func TimingRegistered(name string) bool {
	switch name {
	case "", TimingAnalytic, TimingQueued:
		return true
	}
	return false
}

// queuedTiming reports whether the config selects the queued engine.
func (c *Config) queuedTiming() bool { return c.Timing == TimingQueued }
