package system

import (
	"testing"

	"atcsim/internal/cpu"
	"atcsim/internal/mem"
	"atcsim/internal/trace"
	"atcsim/internal/workloads"
)

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Instructions = 60_000
	cfg.Warmup = 20_000
	return cfg
}

func buildTrace(t *testing.T, name string, n int) *trace.Trace {
	t.Helper()
	s, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s.Build(n, 1)
}

func TestRunValidation(t *testing.T) {
	cfg := quickCfg()
	if _, err := Run(cfg, &trace.Trace{Name: "empty"}); err == nil {
		t.Error("empty trace accepted")
	}
	bad := cfg
	bad.Instructions = 0
	if _, err := Run(bad, workloads.Stream(1000, 1)); err == nil {
		t.Error("zero instructions accepted")
	}
	bad = cfg
	bad.PhysBits = 5
	if _, err := Run(bad, workloads.Stream(1000, 1)); err == nil {
		t.Error("bad PhysBits accepted")
	}
	bad = cfg
	bad.LLC.Policy = "nope"
	if _, err := Run(bad, workloads.Stream(1000, 1)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestStreamRunsFastAndChaseRunsSlow(t *testing.T) {
	cfg := quickCfg()
	stream, err := Run(cfg, workloads.Stream(100_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	chase, err := Run(cfg, workloads.PointerChase(100_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if stream.IPC() <= 2*chase.IPC() {
		t.Errorf("stream IPC %.3f not ≫ chase IPC %.3f", stream.IPC(), chase.IPC())
	}
	if stream.IPC() <= 0 || stream.IPC() > 4 {
		t.Errorf("stream IPC %.3f out of range", stream.IPC())
	}
	// The chase thrashes the STLB; the stream does not.
	if chase.STLBMPKI() < 10*stream.STLBMPKI()+1 {
		t.Errorf("chase STLB MPKI %.2f vs stream %.2f", chase.STLBMPKI(), stream.STLBMPKI())
	}
	// Replay loads on the chase stall the ROB far more than translations
	// (Fig. 1's central observation).
	tr := chase.StallCycles(cpu.StallTranslation)
	rp := chase.StallCycles(cpu.StallReplay)
	if rp <= tr {
		t.Errorf("replay stalls %d not > translation stalls %d", rp, tr)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := quickCfg()
	a, err := Run(cfg, buildTrace(t, "mcf", 90_000))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(cfg, buildTrace(t, "mcf", 90_000))
	if a.Cores[0].Cycles != b.Cores[0].Cycles {
		t.Errorf("cycles differ: %d vs %d", a.Cores[0].Cycles, b.Cores[0].Cycles)
	}
	if a.LLC.TotalMiss() != b.LLC.TotalMiss() {
		t.Error("LLC misses differ between identical runs")
	}
}

func TestCategoriesOrderSTLBMPKI(t *testing.T) {
	cfg := quickCfg()
	mpki := map[string]float64{}
	for _, name := range []string{"xalancbmk", "pr"} {
		r, err := Run(cfg, buildTrace(t, name, 90_000))
		if err != nil {
			t.Fatal(err)
		}
		mpki[name] = r.STLBMPKI()
	}
	if mpki["xalancbmk"] >= mpki["pr"] {
		t.Errorf("STLB MPKI: xalancbmk %.2f >= pr %.2f", mpki["xalancbmk"], mpki["pr"])
	}
	if mpki["pr"] < 5 {
		t.Errorf("pr STLB MPKI %.2f suspiciously low", mpki["pr"])
	}
}

func TestEnhancementLadderOnTLBStress(t *testing.T) {
	tr := buildTrace(t, "pr", 90_000)
	ipcAt := map[Enhancement]float64{}
	hitAt := map[Enhancement]float64{}
	for _, e := range Enhancements() {
		cfg := quickCfg()
		cfg.Apply(e)
		r, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		ipcAt[e] = r.IPC()
		hitAt[e] = r.TranslationHitRate()
	}
	// The full stack must beat the baseline on a High-MPKI workload.
	if ipcAt[TEMPO] <= ipcAt[Baseline] {
		t.Errorf("full enhancements IPC %.4f <= baseline %.4f", ipcAt[TEMPO], ipcAt[Baseline])
	}
	// Translation-conscious policies must raise the on-chip translation
	// hit rate (the paper reports ~99%).
	if hitAt[TSHiP] < hitAt[Baseline] {
		t.Errorf("T-policies lowered translation hit rate: %.3f -> %.3f",
			hitAt[Baseline], hitAt[TSHiP])
	}
}

func TestApplyEnhancementConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Apply(TEMPO)
	if cfg.L2.Policy != "t-drrip" || cfg.LLC.Policy != "t-ship" {
		t.Errorf("policies = %s/%s", cfg.L2.Policy, cfg.LLC.Policy)
	}
	if !cfg.L2.ATP || !cfg.LLC.ATP || !cfg.TEMPO {
		t.Error("ATP/TEMPO flags not set")
	}
	cfg.Apply(Baseline)
	if cfg.L2.Policy != "drrip" || cfg.LLC.Policy != "ship" || cfg.TEMPO {
		t.Error("Apply(Baseline) did not reset")
	}
}

func TestIdealTranslationModeHelps(t *testing.T) {
	tr := buildTrace(t, "pr", 80_000)
	cfg := quickCfg()
	base, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	ideal := quickCfg()
	ideal.L2.IdealTranslations = true
	ideal.L2.IdealReplays = true
	ideal.LLC.IdealTranslations = true
	ideal.LLC.IdealReplays = true
	r, err := Run(ideal, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= base.IPC() {
		t.Errorf("ideal TR IPC %.4f <= baseline %.4f", r.IPC(), base.IPC())
	}
}

func TestRecallTracking(t *testing.T) {
	cfg := quickCfg()
	cfg.TrackRecall = true
	r, err := Run(cfg, buildTrace(t, "pr", 80_000))
	if err != nil {
		t.Fatal(err)
	}
	if !r.LLCRecallTrans.Valid() || !r.L2RecallTrans.Valid() || !r.Cores[0].STLBRecall.Valid() {
		t.Fatal("recall distributions missing")
	}
	// Within(∞) can never exceed 1.
	if w := r.LLCRecallTrans.Within(1 << 20); w > 1.0001 {
		t.Errorf("recall fraction %f > 1", w)
	}
}

func TestSMTRun(t *testing.T) {
	cfg := quickCfg()
	cfg.Instructions = 40_000
	cfg.Warmup = 10_000
	r, err := RunSMT(cfg, buildTrace(t, "pr", 60_000), buildTrace(t, "xalancbmk", 60_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cores) != 2 {
		t.Fatalf("cores = %d", len(r.Cores))
	}
	if len(r.L2) != 1 || len(r.L1D) != 1 {
		t.Errorf("SMT should share one L1D/L2: %d/%d", len(r.L1D), len(r.L2))
	}
	for i, c := range r.Cores {
		if c.IPC <= 0 {
			t.Errorf("thread %d IPC = %f", i, c.IPC)
		}
	}
	// Harmonic speedup of a run against itself is 1.
	if hs := r.HarmonicSpeedupOver(r); hs < 0.999 || hs > 1.001 {
		t.Errorf("self harmonic speedup = %f", hs)
	}
}

func TestMultiCoreRun(t *testing.T) {
	cfg := quickCfg()
	cfg.Instructions = 30_000
	cfg.Warmup = 10_000
	traces := []*trace.Trace{
		buildTrace(t, "pr", 50_000),
		buildTrace(t, "mcf", 50_000),
		buildTrace(t, "xalancbmk", 50_000),
		buildTrace(t, "canneal", 50_000),
	}
	r, err := RunMulti(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cores) != 4 || len(r.L2) != 4 {
		t.Fatalf("topology wrong: %d cores, %d L2s", len(r.Cores), len(r.L2))
	}
	if _, err := RunMulti(cfg, nil); err == nil {
		t.Error("empty mix accepted")
	}
}

func TestTEMPOFiresOnLLCTranslationMisses(t *testing.T) {
	cfg := quickCfg()
	cfg.Apply(TEMPO)
	r, err := Run(cfg, workloads.PointerChase(100_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.DRAM.TEMPOIssued == 0 {
		t.Error("TEMPO never fired on a chase with cold translations")
	}
	// ATP at L2C/LLC should have issued prefetches too.
	var pf uint64
	for i := range r.L2 {
		pf += r.L2[i].PrefIssued
	}
	if pf+r.LLC.PrefIssued == 0 {
		t.Error("ATP never issued a prefetch")
	}
}

func TestPrefetcherConfigs(t *testing.T) {
	tr := buildTrace(t, "tc", 60_000)
	for _, combo := range []struct{ l1d, l2 string }{
		{"ipcp", "none"}, {"none", "spp"}, {"none", "bingo"}, {"none", "isb"},
	} {
		cfg := quickCfg()
		cfg.Instructions = 30_000
		cfg.Warmup = 10_000
		cfg.L1DPrefetcher = combo.l1d
		cfg.L2Prefetcher = combo.l2
		if _, err := Run(cfg, tr); err != nil {
			t.Errorf("prefetchers %v: %v", combo, err)
		}
	}
	cfg := quickCfg()
	cfg.L2Prefetcher = "bogus"
	if _, err := Run(cfg, tr); err == nil {
		t.Error("bogus prefetcher accepted")
	}
}

func TestFig3ShapeDistributions(t *testing.T) {
	cfg := quickCfg()
	r, err := Run(cfg, buildTrace(t, "pr", 90_000))
	if err != nil {
		t.Fatal(err)
	}
	leaf := r.Cores[0].Walker.LeafService
	if leaf.Total() == 0 {
		t.Fatal("no leaf translations recorded")
	}
	rep := r.Cores[0].ReplayService
	if rep.Total() == 0 {
		t.Fatal("no replay loads recorded")
	}
	// Paper Fig. 3: most replay loads miss the whole hierarchy, while most
	// translations are serviced on-chip.
	if f := rep.Fraction(mem.LvlDRAM); f < 0.4 {
		t.Errorf("replay DRAM fraction %.2f, expected majority", f)
	}
	onchip := 1 - leaf.Fraction(mem.LvlDRAM)
	if onchip < 0.5 {
		t.Errorf("on-chip translation fraction %.2f too low", onchip)
	}
}

func TestEnhancementStrings(t *testing.T) {
	want := map[Enhancement]string{
		Baseline: "baseline", TDRRIP: "t-drrip", TSHiP: "t-ship", ATP: "atp", TEMPO: "tempo",
	}
	for e, w := range want {
		if e.String() != w {
			t.Errorf("%d.String() = %q", e, e.String())
		}
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	// The pointer-chase micro-benchmark uses dependent loads: its IPC must
	// be far below a same-size random-but-independent stream. canneal's
	// loads are independent random; chase's are serialized.
	cfg := quickCfg()
	chase, err := Run(cfg, workloads.PointerChase(80_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	indep, err := Run(cfg, buildTrace(t, "canneal", 80_000))
	if err != nil {
		t.Fatal(err)
	}
	// Per-load latency exposure: the chase's cycles-per-load must exceed
	// the independent workload's by a wide margin.
	chaseCPL := float64(chase.Cores[0].Cycles) / float64(chase.L1D[0].Access[mem.ClassNonReplay]+chase.L1D[0].Access[mem.ClassReplay])
	indepCPL := float64(indep.Cores[0].Cycles) / float64(indep.L1D[0].Access[mem.ClassNonReplay]+indep.L1D[0].Access[mem.ClassReplay])
	if chaseCPL < 2*indepCPL {
		t.Errorf("chase cycles/load %.1f not ≫ independent %.1f", chaseCPL, indepCPL)
	}
}

func TestHugePagesCollapseSTLBPressure(t *testing.T) {
	tr := buildTrace(t, "pr", 90_000)
	cfg := quickCfg()
	small, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg.HugePages = true
	huge, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// THP turns a 256MB property footprint into ~128 huge pages: the STLB
	// pressure (and with it the paper's whole problem) collapses.
	if huge.STLBMPKI() > small.STLBMPKI()/10 {
		t.Errorf("huge-page STLB MPKI %.2f not ≪ 4K MPKI %.2f",
			huge.STLBMPKI(), small.STLBMPKI())
	}
	if huge.IPC() <= small.IPC() {
		t.Errorf("huge pages IPC %.4f not > 4K IPC %.4f", huge.IPC(), small.IPC())
	}
	// Walks that do happen stop at level 2.
	if huge.Cores[0].Walker.StepsPerLevel[1] != 0 {
		t.Error("level-1 PTE reads under huge pages")
	}
}
