package system

import (
	"fmt"

	"atcsim/internal/cache"
)

// checkStride is how many instructions elapse between periodic invariant
// audits. Audits scan every set of every cache, so they are far too
// expensive per instruction; a stride catches corruption within a bounded
// window while keeping validated runs usable.
const checkStride = 8192

// auditInvariants walks every model and panics on the first violated
// invariant. Called periodically from the phase loop and once at the end of
// the run when invariant checking is enabled.
func (s *sim) auditInvariants() {
	fail := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("atcsim: invariant violation: %v", err))
		}
	}
	seen := map[*cache.Cache]bool{}
	for _, c := range s.cores {
		fail(c.mmu.CheckInvariants())
		for _, ca := range []*cache.Cache{c.l1i, c.l1d, c.l2} {
			if !seen[ca] {
				fail(ca.CheckInvariants())
				seen[ca] = true
			}
		}
	}
	fail(s.llc.CheckInvariants())
	fail(s.channel.CheckInvariants())
	for _, q := range s.queued {
		fail(q.CheckInvariants())
	}
}
