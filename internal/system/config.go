// Package system assembles the full simulated machine — cores, MMUs, page
// tables, cache hierarchy, prefetchers and DRAM — and runs instruction
// traces through it. It is the layer the public atcsim API and the
// experiment runners sit on.
package system

import (
	"fmt"
	"strings"

	"atcsim/internal/cache"
	"atcsim/internal/cpu"
	"atcsim/internal/dram"
	"atcsim/internal/mem"
	"atcsim/internal/telemetry"
	"atcsim/internal/tlb"
	"atcsim/internal/xlat"
)

// Enhancement selects the paper's cumulative configurations of Fig. 14.
type Enhancement int

// Enhancement levels; each includes all previous ones.
const (
	// Baseline: DRRIP at the L2C, SHiP at the LLC (the paper's strong
	// baseline).
	Baseline Enhancement = iota
	// TDRRIP adds translation-conscious DRRIP at the L2C.
	TDRRIP
	// TSHiP adds translation-conscious SHiP (with NewSign) at the LLC.
	TSHiP
	// ATP adds the address-translation-triggered replay prefetcher at the
	// L2C and LLC.
	ATP
	// TEMPO additionally prefetches the replay line from the DRAM
	// controller when the translation misses the whole hierarchy.
	TEMPO
)

// String names the level.
func (e Enhancement) String() string {
	switch e {
	case Baseline:
		return "baseline"
	case TDRRIP:
		return "t-drrip"
	case TSHiP:
		return "t-ship"
	case ATP:
		return "atp"
	case TEMPO:
		return "tempo"
	}
	return "unknown"
}

// Enhancements lists all levels in cumulative order.
func Enhancements() []Enhancement { return []Enhancement{Baseline, TDRRIP, TSHiP, ATP, TEMPO} }

// Config describes one simulated machine and run.
type Config struct {
	// Instructions is the measured instruction count per core; Warmup runs
	// before statistics reset.
	Instructions int
	Warmup       int
	Seed         int64

	// PhysBits sizes physical memory (2^PhysBits bytes) shared by all cores.
	PhysBits int

	CPU  cpu.Config
	DTLB tlb.Config
	ITLB tlb.Config
	STLB tlb.Config
	PSC  tlb.PSCSizes

	L1I cache.Config
	L1D cache.Config
	L2  cache.Config
	LLC cache.Config

	DRAM dram.Config

	// L1DPrefetcher and L2Prefetcher name data prefetchers ("none",
	// "nextline", "ipcp" / "spp", "bingo", "isb").
	L1DPrefetcher string
	L2Prefetcher  string

	// PrefetchDegree, when positive, overrides the data prefetchers' default
	// degree (candidate lines emitted per training event) for prefetchers
	// that honor one, e.g. "nextline". Zero keeps each prefetcher's default
	// and is omitted from JSON, so existing run keys are unchanged.
	PrefetchDegree int `json:",omitempty"`

	// TEMPO enables the DRAM-controller replay prefetch (LLC translation
	// misses).
	TEMPO bool

	// TrackRecall enables recall-distance histograms at the L2, LLC and
	// STLB (Figs. 5, 7, 18); it costs memory and time, so experiments turn
	// it on only when needed.
	TrackRecall bool

	// ReplayIssueDelay is the pipeline-replay cost of an STLB-missing load:
	// after the walk completes, the STLB and DTLB fill and the load
	// re-issues from the scheduler before its data access reaches the L1D.
	// This window is what ATP's prefetch hides.
	ReplayIssueDelay int64

	// PageWalkers is the number of concurrent page-table walks the MMU
	// sustains (Sunny Cove has two).
	PageWalkers int

	// Mechanism selects the translation mechanism servicing STLB misses:
	// "atp" (default, the paper's machinery), "victima" (cache-as-TLB) or
	// "revelator" (hash-based speculation) — see xlat.Names() and
	// docs/TRANSLATION.md. Empty resolves to "atp" and is byte-identical
	// to the pre-registry simulator.
	Mechanism string

	// Timing selects the hierarchy timing engine: "analytic" (default, the
	// latency-composition model) or "queued" (bounded per-level RQ/WQ/PQ/VAPQ
	// deques with per-cycle stepping and backpressure) — see TimingModels()
	// and the DESIGN.md "Queued timing" section. Empty resolves to "analytic"
	// and is byte-identical to the pre-switch simulator; omitempty keeps the
	// canonical config JSON — and therefore experiment run keys and cached
	// results — unchanged for analytic runs.
	Timing string `json:",omitempty"`

	// Queues, when non-nil, overrides the queued engine's deque geometry at
	// every cache level (unset fields take package defaults); nil selects
	// cache.DefaultQueueConfig per level. Ignored under analytic timing and
	// omitted from JSON when nil, so analytic run keys are unchanged.
	Queues *cache.QueueConfig `json:",omitempty"`

	// NoScatterFrames disables the OS frame-scatter model: data pages get
	// physically contiguous frames (artificially good DRAM row locality) —
	// an ablation knob, not a realistic configuration.
	NoScatterFrames bool

	// HugePages maps all data regions with 2MB pages (transparent huge
	// pages, always-on) instead of 4KB pages. Leaf PTEs then live at page-
	// table level 2 and TLBs use their 2MB arrays; STLB pressure largely
	// disappears — the future-work scenario that bounds the paper's
	// technique.
	HugePages bool

	// CheckInvariants audits the structural invariants of every model
	// (duplicate cache tags, MSHR occupancy, policy counter ranges, TLB
	// duplicates, DRAM slot overbooking) periodically during the run and
	// once at the end. A violation panics with a description — this is a
	// validation trap for the differential harness and debugging, not a
	// recoverable condition. Building with -tags atcsim_invariants forces
	// it on for every run and additionally compiles per-access request
	// audits into the cache path.
	CheckInvariants bool

	// Telemetry, when non-nil, attaches the observability layer (sampled
	// request-lifecycle tracer, interval heartbeat, progress counters) to
	// the run. Telemetry is a pure observer: simulated timing is
	// bit-identical with or without it. Excluded from JSON results.
	Telemetry *telemetry.Hub `json:"-"`

	// SimJobs caps the worker goroutines the deterministic intra-simulation
	// parallel engine runs eligible multi-core simulations on (one goroutine
	// per core, synchronized by cycle-window barriers with shared LLC/DRAM
	// requests resolved in canonical core order — see DESIGN.md §10). 0 uses
	// one worker per available CPU; 1 executes the identical barrier
	// schedule serially. Reports are byte-identical for every value, which
	// is why the knob is excluded from JSON: it must never influence
	// experiment run keys or cached results. Ignored (the legacy
	// interleaved scheduler runs) for single-core and SMT machines, runs
	// with a request tracer attached, the victima mechanism, or an L1D
	// prefetcher — configurations whose step path touches shared state.
	SimJobs int `json:"-"`
}

// DefaultConfig reproduces Table I: a Sunny-Cove-like core with 48KB L1D,
// 512KB L2 (DRRIP), 2MB LLC (SHiP), 64-entry DTLB, 2048-entry STLB and one
// DDR5 channel.
func DefaultConfig() Config {
	return Config{
		Instructions: 400_000,
		Warmup:       100_000,
		Seed:         1,
		PhysBits:     33, // 8GB
		CPU:          cpu.DefaultConfig(),
		DTLB:         tlb.Config{Name: "DTLB", Entries: 64, Ways: 4, Latency: 1, HugeEntries: 32},
		ITLB:         tlb.Config{Name: "ITLB", Entries: 64, Ways: 4, Latency: 1, HugeEntries: 8},
		STLB:         tlb.Config{Name: "STLB", Entries: 2048, Ways: 16, Latency: 8, HugeEntries: 1024},
		PSC:          tlb.DefaultPSCSizes(),
		L1I: cache.Config{
			Name: "L1I", Level: mem.LvlL1D, SizeBytes: 32 << 10, Ways: 8,
			Latency: 4, MSHRs: 8, Policy: "lru",
		},
		L1D: cache.Config{
			Name: "L1D", Level: mem.LvlL1D, SizeBytes: 48 << 10, Ways: 12,
			Latency: 5, MSHRs: 16, Policy: "lru",
		},
		L2: cache.Config{
			Name: "L2C", Level: mem.LvlL2, SizeBytes: 512 << 10, Ways: 8,
			Latency: 10, MSHRs: 32, Policy: "drrip",
		},
		LLC: cache.Config{
			Name: "LLC", Level: mem.LvlLLC, SizeBytes: 2 << 20, Ways: 16,
			Latency: 20, MSHRs: 64, Policy: "ship",
		},
		DRAM:             dram.DefaultConfig(),
		L1DPrefetcher:    "none",
		L2Prefetcher:     "none",
		ReplayIssueDelay: 30,
		PageWalkers:      2,
	}
}

// Apply configures the cumulative enhancement level on top of the current
// policies (Fig. 14's T-DRRIP → +T-SHiP → +ATP → +TEMPO ladder).
func (c *Config) Apply(e Enhancement) {
	c.L2.Policy = "drrip"
	c.LLC.Policy = "ship"
	c.L2.ATP, c.LLC.ATP, c.TEMPO = false, false, false
	if e >= TDRRIP {
		c.L2.Policy = "t-drrip"
	}
	if e >= TSHiP {
		c.LLC.Policy = "t-ship"
	}
	if e >= ATP {
		c.L2.ATP = true
		c.LLC.ATP = true
	}
	if e >= TEMPO {
		c.TEMPO = true
	}
}

// Validate reports configuration errors early.
func (c *Config) Validate() error {
	if c.Instructions <= 0 {
		return fmt.Errorf("system: Instructions must be positive")
	}
	if c.Warmup < 0 {
		return fmt.Errorf("system: negative warmup")
	}
	if c.PhysBits < 22 || c.PhysBits > 48 {
		return fmt.Errorf("system: PhysBits %d out of range", c.PhysBits)
	}
	if !xlat.Registered(c.Mechanism) {
		return fmt.Errorf("system: unknown translation mechanism %q (have %s)",
			c.Mechanism, strings.Join(xlat.Names(), ", "))
	}
	if !TimingRegistered(c.Timing) {
		return fmt.Errorf("system: unknown timing model %q (have %s)",
			c.Timing, strings.Join(TimingModels(), ", "))
	}
	return nil
}
