module atcsim

go 1.22
